"""Prometheus text exposition (version 0.0.4) over a stat registry.

Renders every registered stat as standard scrape output so the service
daemon's ``GET /metrics?format=prometheus`` works with stock tooling
(Prometheus, Grafana agent, ``promtool check metrics``):

- dotted registry paths become underscore-joined metric names under a
  ``repro_`` prefix (``service.queue_depth`` → ``repro_service_queue_depth``),
- counters keep their raw cumulative reading and gain the conventional
  ``_total`` suffix (Prometheus computes its own rates/windows),
- gauges and ratios expose their current value as ``gauge``,
- histograms expand to ``_bucket{le="..."}``/``_sum``/``_count`` series
  with the mandatory ``+Inf`` bucket.

The output is line-oriented and regex-checkable; the test suite holds
every emitted line to the exposition-format grammar.
"""

from __future__ import annotations

import math
from typing import List

from repro.telemetry import StatRegistry
from repro.telemetry.stats import Counter, Gauge, Histogram, RatioStat

#: Default metric-name prefix (a Prometheus "namespace").
PREFIX = "repro"


def metric_name(path: str, prefix: str = PREFIX) -> str:
    """``service.queue_depth`` → ``repro_service_queue_depth``."""
    return f"{prefix}_{path.replace('.', '_')}"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _format_le(bound: float) -> str:
    """Bucket bounds print like Prometheus clients: ints without ``.0``."""
    if bound == int(bound):
        return str(int(bound))
    return repr(float(bound))


def _header(lines: List[str], name: str, kind: str, doc: str) -> None:
    if doc:
        lines.append(f"# HELP {name} {_escape_help(doc)}")
    lines.append(f"# TYPE {name} {kind}")


def prometheus_exposition(registry: StatRegistry, prefix: str = PREFIX) -> str:
    """The registry's current state as Prometheus text exposition."""
    lines: List[str] = []
    for path in sorted(registry.paths()):
        stat = registry.get(path)
        name = metric_name(path, prefix)
        if isinstance(stat, Counter):
            _header(lines, f"{name}_total", "counter", stat.doc)
            lines.append(f"{name}_total {_format_value(stat.read())}")
        elif isinstance(stat, Histogram):
            _header(lines, name, "histogram", stat.doc)
            for bound, count in stat.cumulative_buckets():
                lines.append(f'{name}_bucket{{le="{_format_le(bound)}"}} {count}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {stat.count}')
            lines.append(f"{name}_sum {_format_value(stat.sum)}")
            lines.append(f"{name}_count {stat.count}")
        elif isinstance(stat, RatioStat):
            _header(lines, name, "gauge", stat.doc)
            lines.append(f"{name} {_format_value(stat.measured(None))}")
        elif isinstance(stat, Gauge):
            _header(lines, name, "gauge", stat.doc)
            lines.append(f"{name} {_format_value(stat.read())}")
        else:  # pragma: no cover - no other stat kinds exist today
            _header(lines, name, "untyped", stat.doc)
            lines.append(f"{name} {_format_value(stat.measured(None))}")
    return "\n".join(lines) + "\n"


#: Content type Prometheus scrapers expect for text exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

__all__ = ["CONTENT_TYPE", "PREFIX", "metric_name", "prometheus_exposition"]
