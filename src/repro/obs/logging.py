"""Structured JSON logging with trace correlation.

One :class:`StructuredLog` writes newline-delimited JSON records —
machine-parseable service logs that standard shippers (Loki, Vector,
``jq``) ingest directly.  Every record carries:

- ``ts`` — wall-clock seconds (epoch, 6 decimal places),
- ``event`` — a stable snake_case event name, and
- whatever fields the call site attaches (job ids, durations, statuses).

When a :class:`~repro.obs.tracing.Tracer` is installed, records are
stamped with its ``trace_id`` automatically (call sites add ``span_id``
from the span handles they hold), so a log line and a Perfetto span
correlate on ids with no further plumbing.

A ``stream=None`` log is disabled: ``event()`` returns immediately, so
embedding a daemon in tests stays quiet by default.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Optional, TextIO

from repro.obs import tracing


class StructuredLog:
    """Newline-delimited JSON event log (thread-safe, optionally off)."""

    def __init__(self, stream: Optional[TextIO] = None, clock=time.time) -> None:
        self.stream = stream
        self.clock = clock
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.stream is not None

    def event(self, event: str, **fields: Any) -> Optional[str]:
        """Emit one record; returns the serialized line (or ``None`` if off)."""
        if self.stream is None:
            return None
        record = {"ts": round(self.clock(), 6), "event": event, **fields}
        tracer = tracing.current_tracer()
        if tracer is not None:
            record.setdefault("trace_id", tracer.trace_id)
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self.stream.write(line + "\n")
            self.stream.flush()
        return line


__all__ = ["StructuredLog"]
