"""Phase-resolved telemetry time series.

A :class:`TimeSeries` is the sampled view of one simulation run: every
``interval`` line-accesses the :class:`~repro.obs.sampler.IntervalSampler`
snapshots the run's :class:`~repro.telemetry.StatRegistry` and appends a
:class:`TimeSeriesPoint` holding the *interval-windowed* metrics —
counters as deltas since the previous point, gauges as point-in-time
observations, ratios recomputed over the interval.  Points are tagged
with the phase they fall in (``warmup`` or ``measured``); the sampler
forces a point at the warmup boundary so no interval ever mixes phases.

The series rides on :class:`~repro.sim.results.SimResult` (wire schema
v3) and round-trips through the content-addressed disk cache, so a
``repro timeline`` replay of a cached run is free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry import MetricValue

#: Phase tags a point may carry.
PHASES = ("warmup", "measured")


class TimeSeriesDecodeError(ValueError):
    """A serialized :class:`TimeSeries` could not be decoded."""


@dataclass
class TimeSeriesPoint:
    """One sampled interval of a run."""

    #: cumulative line-accesses (across all cores) when the sample was taken
    accesses: int
    #: which run phase the whole interval falls in (never mixed)
    phase: str
    #: interval-windowed metrics, keyed by registry path
    metrics: Dict[str, MetricValue] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "accesses": self.accesses,
            "phase": self.phase,
            "metrics": dict(sorted(self.metrics.items())),
        }

    @classmethod
    def from_json_dict(cls, payload: Any) -> "TimeSeriesPoint":
        if not isinstance(payload, dict):
            raise TimeSeriesDecodeError("time-series point is not an object")
        try:
            phase = str(payload["phase"])
            if phase not in PHASES:
                raise TimeSeriesDecodeError(f"unknown phase {phase!r}")
            return cls(
                accesses=int(payload["accesses"]),
                phase=phase,
                metrics={
                    str(k): (int(v) if isinstance(v, int) else float(v))
                    for k, v in payload["metrics"].items()
                },
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            if isinstance(exc, TimeSeriesDecodeError):
                raise
            raise TimeSeriesDecodeError(f"malformed point: {exc}") from exc


@dataclass
class TimeSeries:
    """The ordered samples of one run, ``interval`` line-accesses apart.

    The final point of each phase may cover a partial interval (the
    phase boundary and the end of the run flush whatever accumulated);
    ``accesses`` on each point disambiguates the true interval width.
    """

    interval: int
    points: List[TimeSeriesPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def paths(self) -> List[str]:
        """Every metric path present, in first-seen order."""
        seen: Dict[str, None] = {}
        for point in self.points:
            for path in point.metrics:
                seen.setdefault(path)
        return list(seen)

    def series(self, path: str, phase: Optional[str] = None) -> List[MetricValue]:
        """The per-point values of one metric (optionally one phase only)."""
        return [
            point.metrics[path]
            for point in self.points
            if path in point.metrics and (phase is None or point.phase == phase)
        ]

    def phase_points(self, phase: str) -> List[TimeSeriesPoint]:
        return [point for point in self.points if point.phase == phase]

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "interval": self.interval,
            "points": [point.to_json_dict() for point in self.points],
        }

    @classmethod
    def from_json_dict(cls, payload: Any) -> "TimeSeries":
        if not isinstance(payload, dict):
            raise TimeSeriesDecodeError("time series is not an object")
        try:
            interval = int(payload["interval"])
            points_payload = payload["points"]
            if not isinstance(points_payload, list):
                raise TimeSeriesDecodeError("'points' is not a list")
            return cls(
                interval=interval,
                points=[TimeSeriesPoint.from_json_dict(p) for p in points_payload],
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, TimeSeriesDecodeError):
                raise
            raise TimeSeriesDecodeError(f"malformed time series: {exc}") from exc


__all__ = ["PHASES", "TimeSeries", "TimeSeriesDecodeError", "TimeSeriesPoint"]
