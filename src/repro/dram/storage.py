"""Functional backing store: the actual bytes resident in DRAM.

The timing model (:mod:`repro.dram.system`) prices accesses; this class
holds contents.  It is deliberately dumb — a sparse map from physical
line address to 64 bytes — because *all* interpretation of those bytes
(markers, compression, inversion) belongs to the memory controller,
exactly as in the paper's commodity-DIMM setting: the DIMM stores and
returns 64-byte bursts and nothing more.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.compression.base import LINE_SIZE

_ZERO_LINE = b"\x00" * LINE_SIZE


class PhysicalMemory:
    """Sparse functional model of main-memory contents.

    ``initial_content`` supplies the bytes of never-written slots lazily
    (default: zeros).  The simulator wires it to the workload's data
    generator so that read-only data has realistic compressibility, which
    models pages being installed in memory in uncompressed form — exactly
    the paper's install policy for new pages.
    """

    def __init__(
        self,
        capacity_lines: int = 1 << 28,
        initial_content: Optional[Callable[[int], bytes]] = None,
    ) -> None:
        self.capacity_lines = capacity_lines
        self._lines: Dict[int, bytes] = {}
        self._initial_content = initial_content

    def read(self, line_addr: int) -> bytes:
        """Return the 64 bytes at ``line_addr`` (lazily initialised)."""
        self._check(line_addr)
        data = self._lines.get(line_addr)
        if data is not None:
            return data
        if self._initial_content is None:
            return _ZERO_LINE
        data = self._initial_content(line_addr)
        if len(data) != LINE_SIZE:
            raise ValueError("initial_content must produce 64-byte lines")
        self._lines[line_addr] = data
        return data

    def write(self, line_addr: int, data: bytes) -> None:
        """Store 64 bytes at ``line_addr``."""
        self._check(line_addr)
        if len(data) != LINE_SIZE:
            raise ValueError(f"expected {LINE_SIZE} bytes, got {len(data)}")
        self._lines[line_addr] = bytes(data)

    def _check(self, line_addr: int) -> None:
        if not 0 <= line_addr < self.capacity_lines:
            raise IndexError(f"line address {line_addr} out of range")

    def resident_lines(self) -> Dict[int, bytes]:
        """Snapshot of all explicitly written slots (for rekey sweeps)."""
        return dict(self._lines)

    def __len__(self) -> int:
        return len(self._lines)
