"""Access-level DRAM timing model (the USIMM stand-in).

Every 64-byte access is priced against per-bank row-buffer state and
per-channel data-bus occupancy, so extra accesses (metadata lookups,
compressed writebacks, invalidates, mispredicted reads) translate into
queueing delay for everyone sharing the channel — the mechanism behind
all of the paper's bandwidth results.

Fidelity notes (see DESIGN.md §4): requests are serviced in global
arrival order with row-hit-aware latency (an "FR-FCFS-lite"); command-bus
and refresh scheduling are abstracted away.  Shapes, not absolute
latencies, are the goal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.types import Category
from repro.dram.timing import DDRTiming, DRAMGeometry
from repro.telemetry import StatScope


@dataclass
class _Bank:
    """Row-buffer state of one DRAM bank."""

    open_row: int = -1
    ready_at: int = 0  # cycle at which the bank can accept a new command
    activated_at: int = -(10**9)  # last activate time (tRAS enforcement)


@dataclass
class _Channel:
    """One memory channel: banks, a shared data bus, and a write buffer."""

    banks: List[_Bank]
    bus_free_at: int = 0
    write_backlog: int = 0  # buffered write bus-time not yet drained


@dataclass
class DRAMStats:
    """Aggregate counters used by the bandwidth and energy analyses."""

    accesses_by_category: Dict[Category, int] = field(default_factory=dict)
    row_hits: int = 0
    row_misses: int = 0
    activations: int = 0
    reads: int = 0
    writes: int = 0
    busy_cycles: int = 0
    refresh_stalls: int = 0

    def count(self, category: Category) -> None:
        self.accesses_by_category[category] = (
            self.accesses_by_category.get(category, 0) + 1
        )

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses_by_category.values())

    def category_count(self, *categories: Category) -> int:
        return sum(self.accesses_by_category.get(c, 0) for c in categories)


class DRAMSystem:
    """Timing front-end for the memory channels.

    ``access`` returns the cycle at which the requested 64 bytes have been
    transferred; the caller decides what the bytes mean.  Writes return a
    completion too, but cores never wait on them.
    """

    def __init__(
        self,
        timing: DDRTiming = DDRTiming(),
        geometry: DRAMGeometry = DRAMGeometry(),
        write_queue_entries: int = 32,
        page_policy: str = "open",
        refresh: bool = True,
    ) -> None:
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.timing = timing
        self.geometry = geometry
        self.page_policy = page_policy
        self.refresh = refresh
        self.stats = DRAMStats()
        self._drain_threshold = write_queue_entries * timing.t_burst
        self._channels = [
            _Channel(banks=[_Bank() for _ in range(geometry.banks_per_channel)])
            for _ in range(geometry.channels)
        ]

    def register_stats(self, scope: StatScope) -> None:
        """Expose the aggregate counters (``dram.*`` in the system registry)."""
        stats = self.stats
        scope.counter("row_hits", lambda: stats.row_hits)
        scope.counter("row_misses", lambda: stats.row_misses)
        scope.counter("activations", lambda: stats.activations)
        scope.counter("reads", lambda: stats.reads)
        scope.counter("writes", lambda: stats.writes)
        scope.counter("busy_cycles", lambda: stats.busy_cycles)
        scope.counter("refresh_stalls", lambda: stats.refresh_stalls)
        accesses = scope.scope("accesses")
        for category in Category:
            accesses.counter(
                category.value,
                lambda c=category: stats.accesses_by_category.get(c, 0),
            )

    def _after_refresh(self, start: int) -> int:
        """Push ``start`` past any overlapping refresh window.

        All banks of a channel refresh together once per tREFI and are
        unavailable for tRFC — the standard all-bank refresh model.
        """
        if not self.refresh:
            return start
        t_refi, t_rfc = self.timing.t_refi, self.timing.t_rfc
        offset = start % t_refi
        if offset < t_rfc:
            self.stats.refresh_stalls += 1
            return start - offset + t_rfc
        return start

    def access(
        self,
        line_addr: int,
        now: int,
        category: Category,
        burst_bytes: int = 64,
    ) -> int:
        """Perform one access; returns its data-completion cycle.

        Reads are serviced against bank/bus state.  Writes are buffered
        (real controllers prioritise reads): their bus time accumulates in
        a per-channel backlog that drains into idle bus gaps, and a full
        write queue forces a drain that stalls subsequent reads — so write
        bandwidth is still fully paid, just at realistic priority.

        ``burst_bytes`` supports non-commodity variable-burst DIMMs
        (MemZip-style): bus occupancy scales with the transfer size in
        8-byte beats; commodity accesses always move 64 bytes.
        """
        timing = self.timing
        decoded = self.geometry.decode(line_addr)
        channel = self._channels[decoded.channel]
        bank = channel.banks[decoded.bank]
        self.stats.count(category)
        beats = max(1, (burst_bytes + 7) // 8)
        t_transfer = max(1, timing.t_burst * beats // 8)

        if category.is_write:
            # row-buffer statistics still apply; timing goes to the backlog
            if self.page_policy == "open" and bank.open_row == decoded.row:
                self.stats.row_hits += 1
            else:
                self.stats.row_misses += 1
                self.stats.activations += 1
                if self.page_policy == "open":
                    bank.open_row = decoded.row
            channel.write_backlog += t_transfer
            self.stats.writes += 1
            self.stats.busy_cycles += t_transfer
            return now

        # drain buffered writes into any idle bus time before this read
        if channel.write_backlog:
            if now > channel.bus_free_at:
                drained = min(now - channel.bus_free_at, channel.write_backlog)
                channel.bus_free_at += drained
                channel.write_backlog -= drained
            if channel.write_backlog >= self._drain_threshold:
                channel.bus_free_at = (
                    max(channel.bus_free_at, now) + channel.write_backlog
                )
                channel.write_backlog = 0

        start = self._after_refresh(max(now, bank.ready_at))
        if self.page_policy == "closed":
            # rows auto-precharge after every access: constant activate cost
            self.stats.row_misses += 1
            self.stats.activations += 1
            bank.activated_at = start
            data_ready = start + timing.t_rcd + timing.t_cas
        elif bank.open_row == decoded.row:
            self.stats.row_hits += 1
            data_ready = start + timing.t_cas
        else:
            self.stats.row_misses += 1
            self.stats.activations += 1
            if bank.open_row != -1:
                # must precharge; respect tRAS since the last activate
                precharge_at = max(start, bank.activated_at + timing.t_ras)
                start = precharge_at + timing.t_rp
            bank.activated_at = start
            bank.open_row = decoded.row
            data_ready = start + timing.t_rcd + timing.t_cas

        transfer_start = max(data_ready, channel.bus_free_at)
        completion = transfer_start + t_transfer
        channel.bus_free_at = completion
        bank.ready_at = transfer_start  # next column command can pipeline in

        self.stats.reads += 1
        self.stats.busy_cycles += t_transfer
        return completion

    def channel_utilisation(self, elapsed_cycles: int) -> float:
        """Fraction of total data-bus cycles carrying transfers."""
        if elapsed_cycles <= 0:
            return 0.0
        total_bus = elapsed_cycles * self.geometry.channels
        return min(1.0, self.stats.busy_cycles / total_bus)
