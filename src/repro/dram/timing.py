"""DDR4 timing and geometry parameters (paper Table I).

The paper's system runs 8 cores at 3.2GHz over a DDR4-1600 memory system
(800MHz bus) with 2 channels and 2 ranks per channel.  All timing here is
expressed in CPU cycles: one bus clock is 4 CPU cycles, and a 64-byte
burst (BL8, double data rate) occupies the data bus for 4 bus clocks.
"""

from __future__ import annotations

from dataclasses import dataclass


def ns_to_cycles(ns: float, cpu_ghz: float) -> int:
    """Convert nanoseconds to whole CPU cycles, rounding up."""
    cycles = ns * cpu_ghz
    return int(cycles) + (0 if cycles == int(cycles) else 1)


@dataclass(frozen=True)
class DDRTiming:
    """DRAM timing in CPU cycles, derived from DDR4-1600-style values."""

    cpu_ghz: float = 3.2
    bus_mhz: float = 800.0
    tcas_ns: float = 13.75
    trcd_ns: float = 13.75
    trp_ns: float = 13.75
    tras_ns: float = 35.0
    trefi_ns: float = 7_800.0
    trfc_ns: float = 350.0

    @property
    def cycles_per_bus_clock(self) -> int:
        return round(self.cpu_ghz * 1000.0 / self.bus_mhz)

    @property
    def t_cas(self) -> int:
        """CAS latency: column command to first data beat."""
        return ns_to_cycles(self.tcas_ns, self.cpu_ghz)

    @property
    def t_rcd(self) -> int:
        """Activate to column command."""
        return ns_to_cycles(self.trcd_ns, self.cpu_ghz)

    @property
    def t_rp(self) -> int:
        """Precharge latency."""
        return ns_to_cycles(self.trp_ns, self.cpu_ghz)

    @property
    def t_ras(self) -> int:
        """Minimum activate-to-precharge interval."""
        return ns_to_cycles(self.tras_ns, self.cpu_ghz)

    @property
    def t_burst(self) -> int:
        """Data-bus occupancy of one 64-byte transfer (BL8 @ DDR)."""
        return 4 * self.cycles_per_bus_clock

    @property
    def t_refi(self) -> int:
        """Average refresh interval (one REF command per tREFI)."""
        return ns_to_cycles(self.trefi_ns, self.cpu_ghz)

    @property
    def t_rfc(self) -> int:
        """Refresh cycle time: the rank is unavailable for this long."""
        return ns_to_cycles(self.trfc_ns, self.cpu_ghz)


@dataclass(frozen=True)
class DRAMGeometry:
    """Channel/rank/bank organisation and row-buffer reach."""

    channels: int = 2
    ranks_per_channel: int = 2
    banks_per_rank: int = 16
    lines_per_row: int = 128  # 8KB row buffer of 64-byte lines
    channel_interleave_lines: int = 4
    """Channel stripe width in lines.  256B (one 4-line compression group)
    keeps sequential streams spread over channels *and* keeps the TMC
    address mapping channel-neutral: with per-line interleave, every
    group-base slot would land on channel 0 and compacted reads would
    halve the usable channel bandwidth — an artifact, not a property of
    the design."""

    @property
    def banks_per_channel(self) -> int:
        return self.ranks_per_channel * self.banks_per_rank

    def decode(self, line_addr: int) -> "DecodedAddress":
        """Map a physical line address onto (channel, bank, row, column).

        Consecutive channel-stripes interleave across channels, then walk
        a row, then interleave across banks.
        """
        stripe = line_addr // self.channel_interleave_lines
        offset = line_addr % self.channel_interleave_lines
        channel = stripe % self.channels
        local = (stripe // self.channels) * self.channel_interleave_lines + offset
        column = local % self.lines_per_row
        rest = local // self.lines_per_row
        bank = rest % self.banks_per_channel
        row = rest // self.banks_per_channel
        return DecodedAddress(channel, bank, row, column)


@dataclass(frozen=True)
class DecodedAddress:
    """A physical line address decoded into DRAM coordinates."""

    channel: int
    bank: int
    row: int
    column: int
