"""DRAM substrate: functional storage plus an access-level timing model."""

from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMStats, DRAMSystem
from repro.dram.timing import DDRTiming, DecodedAddress, DRAMGeometry, ns_to_cycles

__all__ = [
    "PhysicalMemory",
    "DRAMStats",
    "DRAMSystem",
    "DDRTiming",
    "DecodedAddress",
    "DRAMGeometry",
    "ns_to_cycles",
]
