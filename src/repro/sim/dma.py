"""DMA / multi-socket agent (paper §VI-G).

The paper argues PTMC works transparently for DMA and multi-socket
traffic because every access to a channel goes through its memory
controller, which interprets markers and inversion on every read and
applies the collision check on every write.  This module models such an
agent: a device that reads and writes physical line ranges through the
controller interface, snooping the LLC for coherence like a real
cache-coherent DMA engine.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.cache import EvictedLine
from repro.core.base_controller import LLCView, MemoryController, NullLLCView


class DMAAgent:
    """A cache-coherent DMA engine attached to the memory controller.

    ``core_id`` identifies the agent for statistics/policy purposes; the
    paper's point is precisely that no other special support is needed.
    """

    def __init__(
        self,
        controller: MemoryController,
        llc: Optional[LLCView] = None,
        core_id: int = 0,
    ) -> None:
        self.controller = controller
        self.llc = llc if llc is not None else NullLLCView()
        self.core_id = core_id
        self.reads = 0
        self.writes = 0

    def read_block(self, start_line: int, num_lines: int, now: int = 0) -> bytes:
        """Read ``num_lines`` consecutive lines, snooping LLC copies."""
        chunks: List[bytes] = []
        for addr in range(start_line, start_line + num_lines):
            cached = self.llc.probe(addr)
            if cached is not None:
                chunks.append(cached.data)  # dirty or clean, the LLC is newest
            else:
                chunks.append(self.controller.read_line(addr, now, self.core_id, self.llc).data)
            self.reads += 1
        return b"".join(chunks)

    def write_block(self, start_line: int, data: bytes, now: int = 0) -> int:
        """Write 64-byte-aligned data, invalidating stale cached copies.

        A device write lands on a line whose current residency the
        controller must know (it may sit inside a compressed group whose
        other members need relocation).  Like real partial-group updates,
        this is a read-modify-write: the controller first locates the line
        (one read, marker-verified), then applies the update with the
        discovered compression level.
        """
        if len(data) % 64:
            raise ValueError("DMA writes are in whole 64-byte lines")
        lines_written = 0
        for offset in range(0, len(data), 64):
            addr = start_line + offset // 64
            self.llc.force_evict(addr)  # coherence: drop the cached copy
            current = self.controller.read_line(addr, now, self.core_id, self.llc)
            line = EvictedLine(
                addr, data[offset : offset + 64], True, current.level, self.core_id
            )
            self.controller.handle_eviction(line, now, self.core_id, self.llc)
            self.writes += 1
            lines_written += 1
        return lines_written
