"""Simulation engine: configs, system wiring, runner, results."""

from repro.sim.config import SamplingConfig, SimConfig, bench_config, paper_config, quick_config
from repro.sim.results import (
    SimResult,
    geometric_mean,
    normalized_bandwidth,
    weighted_speedup,
)
from repro.sim.dma import DMAAgent
from repro.sim.runner import clear_cache, compare, simulate, suite_geomean, sweep
from repro.sim.system import DESIGNS, SimulatedSystem, build_controller

__all__ = [
    "SamplingConfig",
    "SimConfig",
    "bench_config",
    "paper_config",
    "quick_config",
    "SimResult",
    "DMAAgent",
    "geometric_mean",
    "normalized_bandwidth",
    "weighted_speedup",
    "clear_cache",
    "compare",
    "simulate",
    "suite_geomean",
    "sweep",
    "DESIGNS",
    "SimulatedSystem",
    "build_controller",
]
