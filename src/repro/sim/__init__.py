"""Simulation engine: configs, system wiring, runner, caches, results."""

from repro.sim.config import SamplingConfig, SimConfig, bench_config, paper_config, quick_config
from repro.sim.results import (
    RESULT_SCHEMA_VERSION,
    ResultDecodeError,
    SimResult,
    geometric_mean,
    normalized_bandwidth,
    weighted_speedup,
)
from repro.sim.dma import DMAAgent
from repro.sim.diskcache import DiskCache, cache_key, workload_identity
from repro.sim.parallel import BatchReport, run_batch
from repro.sim.runner import (
    clear_cache,
    compare,
    configure_disk_cache,
    simulate,
    suite_geomean,
    sweep,
)
from repro.sim.system import DESIGNS, SimulatedSystem, build_controller

__all__ = [
    "SamplingConfig",
    "SimConfig",
    "bench_config",
    "paper_config",
    "quick_config",
    "RESULT_SCHEMA_VERSION",
    "ResultDecodeError",
    "SimResult",
    "DMAAgent",
    "DiskCache",
    "BatchReport",
    "cache_key",
    "workload_identity",
    "geometric_mean",
    "normalized_bandwidth",
    "weighted_speedup",
    "clear_cache",
    "compare",
    "configure_disk_cache",
    "run_batch",
    "simulate",
    "suite_geomean",
    "sweep",
    "DESIGNS",
    "SimulatedSystem",
    "build_controller",
]
