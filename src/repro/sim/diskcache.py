"""Content-addressed on-disk cache for simulation results.

Simulations are pure functions of (workload parameters, design, config):
the trace generators, data patterns and DRAM model are all seeded from
the :class:`~repro.sim.config.SimConfig` and the workload spec.  That
makes results safe to persist and share across processes — a full sweep
re-run in a cold process can be satisfied entirely from disk.

Keys are a SHA-256 over the *fully resolved* identity of the run:

- the workload's complete parameter set (not just its name — two specs
  that share a name but differ in any parameter must never share
  results),
- the design string,
- every field of the resolved ``SimConfig`` (recursively), and
- a cache schema version (bump :data:`CACHE_SCHEMA_VERSION` when the
  simulator's semantics change and previously stored results go stale).

Entries are the versioned JSON produced by
:meth:`repro.sim.results.SimResult.to_json_dict`; corrupt or
version-mismatched files are discarded and treated as misses.
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

try:  # advisory write locking (POSIX); harmless to run without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.obs.tracing import span
from repro.sim.results import ResultDecodeError, SimResult

#: Bump to invalidate every previously stored entry (key-side version).
CACHE_SCHEMA_VERSION = 1

#: Environment variable that overrides the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-ptmc/sim``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or (Path.home() / ".cache")
    return Path(base) / "repro-ptmc" / "sim"


# ---------------------------------------------------------------------------
# Stable identities
# ---------------------------------------------------------------------------


def stable_identity(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-able primitives, stably and recursively.

    Dataclasses are tagged with their class name so two different types
    with coincidentally equal fields cannot collide; enum members reduce
    to (type, value); dict entries are sorted by their serialized key so
    insertion order never leaks into the hash.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return ["bytes", obj.hex()]
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.value]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: stable_identity(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return [type(obj).__name__, fields]
    if isinstance(obj, dict):
        entries = sorted(
            (json.dumps(stable_identity(k), sort_keys=True), stable_identity(v))
            for k, v in obj.items()
        )
        return ["dict", entries]
    if isinstance(obj, (list, tuple)):
        return ["seq", [stable_identity(item) for item in obj]]
    if isinstance(obj, (set, frozenset)):
        return ["set", sorted(json.dumps(stable_identity(i), sort_keys=True) for i in obj)]
    raise TypeError(f"cannot build a stable identity for {type(obj).__name__}: {obj!r}")


def workload_identity(workload: Any) -> Any:
    """The workload's *full parameter* identity.

    This — not ``workload.name`` — is what memoization and disk-cache
    keys must use: a ``WorkloadSpec`` reduces to every field (footprint,
    locality fractions, data profile, seed, …) and a ``MixWorkload`` to
    its per-core spec list, so same-named-but-different workloads get
    distinct keys.
    """
    return stable_identity(workload)


def config_identity(config: Any) -> Any:
    """The fully-resolved ``SimConfig`` identity (recursive over presets)."""
    return stable_identity(config)


def cache_key(workload: Any, design: str, config: Any) -> str:
    """Stable SHA-256 key for one (workload, design, config) run."""
    blob = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "workload": workload_identity(workload),
            "design": design,
            "config": config_identity(config),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class CacheCounters:
    """Hit/miss accounting for one :class:`DiskCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evicted_corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class DiskCache:
    """A directory of ``<sha256>.json`` result files, written atomically.

    Concurrent writers (the parallel sweep workers) are safe: entries are
    written to a temporary file and ``os.replace``-d into place, and any
    truncated/corrupt/stale-schema file is deleted and reported as a miss.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.counters = CacheCounters()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimResult]:
        """The cached result for ``key``, or ``None`` (counted as a miss)."""
        with span("diskcache.get", category="cache", key=key[:12]):
            path = self._path(key)
            try:
                text = path.read_text()
            except OSError:
                self.counters.misses += 1
                return None
            try:
                result = SimResult.from_json(text)
            except ResultDecodeError:
                self.counters.misses += 1
                self.counters.evicted_corrupt += 1
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
            self.counters.hits += 1
            return result

    @contextlib.contextmanager
    def _write_lock(self, key: str):
        """Advisory per-key write lock (no-op where ``fcntl`` is missing).

        Writes are already crash-safe — each writer stages its own temp
        file and ``os.replace``s it into place atomically — so the lock
        only *serialises* concurrent writers of one key (service workers
        racing a CLI sweep), guaranteeing the surviving entry is one
        writer's complete output rather than relying on rename ordering.
        """
        if fcntl is None:
            yield
            return
        lock_path = self._path(key).with_suffix(".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def put(self, key: str, result: SimResult) -> None:
        """Persist ``result`` under ``key`` (atomic, locked, last writer wins)."""
        with span("diskcache.put", category="cache", key=key[:12]):
            self._put_locked(key, result)

    def _put_locked(self, key: str, result: SimResult) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._write_lock(key):
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json.tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(result.to_json())
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        self.counters.stores += 1

    # -- maintenance -----------------------------------------------------

    def _entry_paths(self):
        if not self.root.is_dir():
            return
        yield from self.root.glob("*/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
            self._remove_lock(path)
        return removed

    def entry_ages(self) -> Optional[Tuple[float, float]]:
        """``(oldest, newest)`` entry age in seconds, or ``None`` if empty."""
        now = time.time()
        ages = []
        for path in self._entry_paths():
            try:
                ages.append(now - path.stat().st_mtime)
            except OSError:
                pass
        if not ages:
            return None
        return max(ages), min(ages)

    def prune(self, older_than_seconds: float) -> int:
        """Delete entries last written more than ``older_than_seconds`` ago.

        Long-running service hosts call this (``repro cache prune``) to
        bound the shared result store; pruned identities simply
        re-simulate on next request.
        """
        cutoff = time.time() - older_than_seconds
        removed = 0
        for path in list(self._entry_paths()):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    removed += 1
                    self._remove_lock(path)
            except OSError:
                pass
        return removed

    def _remove_lock(self, entry_path: Path) -> None:
        try:
            entry_path.with_suffix(".lock").unlink()
        except OSError:
            pass

    def stats(self) -> Dict[str, Any]:
        """Everything ``repro cache stats`` reports."""
        ages = self.entry_ages()
        return {
            "dir": str(self.root),
            "entries": len(self),
            "bytes": self.size_bytes(),
            "oldest_age_seconds": round(ages[0], 3) if ages else None,
            "newest_age_seconds": round(ages[1], 3) if ages else None,
            **self.counters.as_dict(),
        }


__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "CacheCounters",
    "DiskCache",
    "cache_key",
    "config_identity",
    "default_cache_dir",
    "stable_identity",
    "workload_identity",
]
