"""Simulation results and the metrics derived from them."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.types import Category
from repro.dram.system import DRAMStats


@dataclass
class SimResult:
    """Everything a finished simulation reports."""

    workload: str
    design: str
    core_cycles: List[int]
    core_instructions: List[int]
    dram: DRAMStats
    l3_hits: int = 0
    l3_misses: int = 0
    useful_prefetches: int = 0
    demand_accesses: int = 0
    llp_accuracy: Optional[float] = None
    metadata_hit_rate: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def elapsed_cycles(self) -> int:
        """Wall-clock of the whole run (slowest core)."""
        return max(self.core_cycles) if self.core_cycles else 0

    @property
    def ipc_per_core(self) -> List[float]:
        return [
            instr / cycles if cycles else 0.0
            for instr, cycles in zip(self.core_instructions, self.core_cycles)
        ]

    @property
    def l3_hit_rate(self) -> float:
        total = self.l3_hits + self.l3_misses
        return self.l3_hits / total if total else 0.0

    def bandwidth_by_category(self) -> Dict[Category, int]:
        """DRAM accesses per accounting bucket (64B each)."""
        return dict(self.dram.accesses_by_category)

    @property
    def total_dram_accesses(self) -> int:
        return self.dram.total_accesses


def weighted_speedup(result: SimResult, baseline: SimResult) -> float:
    """Paper's metric: per-core IPC normalised to the baseline, averaged.

    In rate mode every core runs the same trace in both systems, so this
    reduces to the mean of per-core cycle ratios.
    """
    if result.core_instructions != baseline.core_instructions:
        raise ValueError("weighted speedup requires identical per-core traces")
    ratios = [
        ipc / base_ipc if base_ipc else 0.0
        for ipc, base_ipc in zip(result.ipc_per_core, baseline.ipc_per_core)
    ]
    return sum(ratios) / len(ratios) if ratios else 0.0


def normalized_bandwidth(result: SimResult, baseline: SimResult) -> Dict[str, float]:
    """Per-category DRAM traffic normalised to baseline *total* traffic.

    This is the y-axis of the paper's Figs. 4 and 14: stack heights sum to
    (compressed traffic / uncompressed traffic).
    """
    denom = baseline.total_dram_accesses or 1
    return {
        category.value: count / denom
        for category, count in sorted(
            result.bandwidth_by_category().items(), key=lambda kv: kv[0].value
        )
    }


def geometric_mean(values) -> float:
    """Geomean (the paper's average for speedups)."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
