"""Simulation results and the metrics derived from them."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.types import Category
from repro.dram.system import DRAMStats
from repro.obs.timeseries import TimeSeries, TimeSeriesDecodeError
from repro.telemetry import MetricValue

#: Version of the :class:`SimResult` JSON wire format.  Bump whenever the
#: serialized shape changes *or* when simulation semantics change enough
#: that previously cached results must not be reused — every persisted
#: result embeds this and the disk cache treats a mismatch as a miss.
#: v2: added the ``metrics`` mapping (telemetry-registry paths).
#: v3: added the optional ``timeseries`` envelope (interval sampling).
#: v2 payloads still decode (the added field is optional and the
#: simulation semantics are unchanged), so warm disk caches survive.
RESULT_SCHEMA_VERSION = 3

#: Schema versions :meth:`SimResult.from_json_dict` accepts.
SUPPORTED_SCHEMA_VERSIONS = (2, RESULT_SCHEMA_VERSION)


class ResultDecodeError(ValueError):
    """A serialized ``SimResult`` could not be decoded.

    Raised on schema-version mismatches, missing fields, and type errors;
    the disk cache treats any of these as "entry absent" and re-simulates.
    """


@dataclass
class SimResult:
    """Everything a finished simulation reports."""

    workload: str
    design: str
    core_cycles: List[int]
    core_instructions: List[int]
    dram: DRAMStats
    l3_hits: int = 0
    l3_misses: int = 0
    useful_prefetches: int = 0
    demand_accesses: int = 0
    llp_accuracy: Optional[float] = None
    metadata_hit_rate: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)
    #: measured-window telemetry keyed by registry path (``dram.row_hits``,
    #: ``ptmc.llp.accuracy``, ...); the legacy fields above are projections
    #: of this mapping kept for established consumers.
    metrics: Dict[str, MetricValue] = field(default_factory=dict)
    #: phase-resolved telemetry samples (``None`` unless the run was
    #: observed with an :class:`~repro.obs.sampler.ObsConfig` that
    #: enabled interval sampling); purely additive — core metrics are
    #: identical with or without it.
    timeseries: Optional[TimeSeries] = None

    @property
    def elapsed_cycles(self) -> int:
        """Wall-clock of the whole run (slowest core)."""
        return max(self.core_cycles) if self.core_cycles else 0

    @property
    def ipc_per_core(self) -> List[float]:
        return [
            instr / cycles if cycles else 0.0
            for instr, cycles in zip(self.core_instructions, self.core_cycles)
        ]

    @property
    def l3_hit_rate(self) -> float:
        total = self.l3_hits + self.l3_misses
        return self.l3_hits / total if total else 0.0

    def bandwidth_by_category(self) -> Dict[Category, int]:
        """DRAM accesses per accounting bucket (64B each)."""
        return dict(self.dram.accesses_by_category)

    @property
    def total_dram_accesses(self) -> int:
        return self.dram.total_accesses

    # --- versioned JSON wire format (used by the on-disk result cache) ---

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation, tagged with the schema version."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "workload": self.workload,
            "design": self.design,
            "core_cycles": list(self.core_cycles),
            "core_instructions": list(self.core_instructions),
            "dram": {
                "accesses_by_category": {
                    category.value: count
                    for category, count in sorted(
                        self.dram.accesses_by_category.items(),
                        key=lambda kv: kv[0].value,
                    )
                },
                "row_hits": self.dram.row_hits,
                "row_misses": self.dram.row_misses,
                "activations": self.dram.activations,
                "reads": self.dram.reads,
                "writes": self.dram.writes,
                "busy_cycles": self.dram.busy_cycles,
                "refresh_stalls": self.dram.refresh_stalls,
            },
            "l3_hits": self.l3_hits,
            "l3_misses": self.l3_misses,
            "useful_prefetches": self.useful_prefetches,
            "demand_accesses": self.demand_accesses,
            "llp_accuracy": self.llp_accuracy,
            "metadata_hit_rate": self.metadata_hit_rate,
            "extras": dict(sorted(self.extras.items())),
            # sorted paths: dumped metrics diff deterministically even
            # through serializers that preserve insertion order
            "metrics": dict(sorted(self.metrics.items())),
            "timeseries": (
                None if self.timeseries is None else self.timeseries.to_json_dict()
            ),
        }

    @classmethod
    def from_json_dict(cls, payload: Any) -> "SimResult":
        """Inverse of :meth:`to_json_dict`; raises :class:`ResultDecodeError`."""
        if not isinstance(payload, dict):
            raise ResultDecodeError("result payload is not an object")
        schema = payload.get("schema")
        if schema not in SUPPORTED_SCHEMA_VERSIONS:
            raise ResultDecodeError(
                f"result schema {schema!r} not in supported {SUPPORTED_SCHEMA_VERSIONS}"
            )
        try:
            timeseries_payload = payload.get("timeseries") if schema >= 3 else None
            try:
                timeseries = (
                    None
                    if timeseries_payload is None
                    else TimeSeries.from_json_dict(timeseries_payload)
                )
            except TimeSeriesDecodeError as exc:
                raise ResultDecodeError(str(exc)) from exc
            dram_payload = payload["dram"]
            dram = DRAMStats(
                accesses_by_category={
                    Category(name): int(count)
                    for name, count in dram_payload["accesses_by_category"].items()
                },
                row_hits=int(dram_payload["row_hits"]),
                row_misses=int(dram_payload["row_misses"]),
                activations=int(dram_payload["activations"]),
                reads=int(dram_payload["reads"]),
                writes=int(dram_payload["writes"]),
                busy_cycles=int(dram_payload["busy_cycles"]),
                refresh_stalls=int(dram_payload["refresh_stalls"]),
            )
            llp_accuracy = payload["llp_accuracy"]
            metadata_hit_rate = payload["metadata_hit_rate"]
            return cls(
                workload=str(payload["workload"]),
                design=str(payload["design"]),
                core_cycles=[int(c) for c in payload["core_cycles"]],
                core_instructions=[int(i) for i in payload["core_instructions"]],
                dram=dram,
                l3_hits=int(payload["l3_hits"]),
                l3_misses=int(payload["l3_misses"]),
                useful_prefetches=int(payload["useful_prefetches"]),
                demand_accesses=int(payload["demand_accesses"]),
                llp_accuracy=None if llp_accuracy is None else float(llp_accuracy),
                metadata_hit_rate=(
                    None if metadata_hit_rate is None else float(metadata_hit_rate)
                ),
                extras={str(k): float(v) for k, v in payload["extras"].items()},
                metrics={
                    str(k): (int(v) if isinstance(v, int) else float(v))
                    for k, v in payload["metrics"].items()
                },
                timeseries=timeseries,
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ResultDecodeError(f"malformed result payload: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimResult":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ResultDecodeError(f"invalid JSON: {exc}") from exc
        return cls.from_json_dict(payload)


def weighted_speedup(result: SimResult, baseline: SimResult) -> float:
    """Paper's metric: per-core IPC normalised to the baseline, averaged.

    In rate mode every core runs the same trace in both systems, so this
    reduces to the mean of per-core cycle ratios.
    """
    if result.core_instructions != baseline.core_instructions:
        raise ValueError("weighted speedup requires identical per-core traces")
    ratios = [
        ipc / base_ipc if base_ipc else 0.0
        for ipc, base_ipc in zip(result.ipc_per_core, baseline.ipc_per_core)
    ]
    return sum(ratios) / len(ratios) if ratios else 0.0


def normalized_bandwidth(result: SimResult, baseline: SimResult) -> Dict[str, float]:
    """Per-category DRAM traffic normalised to baseline *total* traffic.

    This is the y-axis of the paper's Figs. 4 and 14: stack heights sum to
    (compressed traffic / uncompressed traffic).
    """
    denom = baseline.total_dram_accesses or 1
    return {
        category.value: count / denom
        for category, count in sorted(
            result.bandwidth_by_category().items(), key=lambda kv: kv[0].value
        )
    }


def geometric_mean(values) -> float:
    """Geomean (the paper's average for speedups)."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
