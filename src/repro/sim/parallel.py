"""Process-parallel sweep execution (the batch evaluation engine).

The (workload, design, config) space is embarrassingly parallel: every
simulation is a deterministic pure function of its seeds, so fanning a
sweep out over a :class:`~concurrent.futures.ProcessPoolExecutor`
produces bitwise-identical results to the serial path while first runs
scale with cores.  Workers share the parent's on-disk result cache
(:mod:`repro.sim.diskcache`), so a re-run — even in a cold process —
satisfies every job from disk without executing a single simulation.

Entry points mirror the serial runner: :func:`run_batch` executes an
explicit job list and reports per-run provenance and wall time;
:func:`sweep` and :func:`suite_geomean` are the parallel counterparts of
the runner functions of the same names.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.tracing import instant, span
from repro.sim import runner
from repro.sim.config import SimConfig, bench_config
from repro.sim.diskcache import cache_key
from repro.sim.results import SimResult, geometric_mean, weighted_speedup
from repro.workloads.suites import Workload

#: One unit of work: (workload, design) under the batch's config.
Job = Tuple[Workload, str]


@dataclass
class BatchReport:
    """Everything a finished batch reports, in job order."""

    results: List[SimResult] = field(default_factory=list)
    #: (workload name, design) identifying each result, in job order
    job_names: List[Tuple[str, str]] = field(default_factory=list)
    #: where each result came from: "memory" | "disk" | "executed"
    sources: List[str] = field(default_factory=list)
    #: per-job wall time as observed by the process that served it
    seconds: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    jobs_used: int = 1

    @property
    def executed(self) -> int:
        return self.sources.count("executed")

    @property
    def cache_hits(self) -> int:
        return len(self.sources) - self.executed

    def counts(self) -> Dict[str, int]:
        return {
            "jobs": len(self.sources),
            "executed": self.executed,
            "memory_hits": self.sources.count("memory"),
            "disk_hits": self.sources.count("disk"),
        }

    def metrics_matrix(self) -> List[Dict[str, Any]]:
        """One JSON-ready row per job: workload, design, telemetry mapping.

        Metric keys are sorted so dumped matrices are byte-stable across
        runs and serializers that preserve insertion order.
        """
        return [
            {"workload": w, "design": d, "metrics": dict(sorted(result.metrics.items()))}
            for (w, d), result in zip(self.job_names, self.results)
        ]


def init_worker(cache_dir: Optional[str], trace_dir: Optional[str] = None) -> None:
    """Pool initializer: point the worker at the shared disk cache.

    Public because the job-queue service (:mod:`repro.service`) builds
    its own worker pool from the same primitives.  ``trace_dir``
    additionally points the worker at the parent's trace store, so
    trace-backed jobs replay the same content-addressed records.
    """
    if cache_dir is not None:
        runner.configure_disk_cache(cache_dir)
    if trace_dir is not None:
        from repro.traces.store import configure_trace_store

        configure_trace_store(trace_dir)


def run_job(job: Tuple[Workload, str, SimConfig]) -> Tuple[SimResult, str, float]:
    """Execute one (workload, design, config) task in this process.

    Returns ``(result, source, seconds)`` where ``source`` is the
    runner's provenance string (``"memory"`` | ``"disk"`` | ``"executed"``).
    """
    workload, design, config = job
    start = time.perf_counter()
    result, source = runner.simulate_with_source(workload, design, config)
    return result, source, time.perf_counter() - start


def run_batch(
    tasks: Sequence[Job],
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> BatchReport:
    """Execute every (workload, design) task, in parallel when asked.

    ``jobs`` <= 1 (or ``None``) runs serially in-process; larger values
    spread the tasks over that many worker processes.  ``cache_dir``
    overrides the disk cache the workers use (defaults to the parent's
    configured cache, if any).  All results are adopted into the parent's
    in-process memo, so follow-up serial calls are free.
    """
    if config is None:
        config = bench_config()
    resolved: List[Job] = [
        (runner.resolve_workload(workload), design) for workload, design in tasks
    ]
    if cache_dir is None and runner.disk_cache() is not None:
        cache_dir = str(runner.disk_cache().root)
    trace_dir = None
    if any(hasattr(workload, "trace_hash") for workload, _ in resolved):
        from repro.traces.store import trace_store

        trace_dir = str(trace_store().root)
    report = BatchReport(jobs_used=max(1, jobs or 1))
    start = time.perf_counter()
    # Tracing is parent-side only: worker processes cannot share the
    # parent's tracer, so the batch is one span and each completed job
    # lands as an instant with its provenance and wall time.
    with span(
        "sweep.run_batch",
        category="sweep",
        jobs=len(resolved),
        workers=report.jobs_used,
    ):
        if report.jobs_used <= 1:
            outcomes = [run_job((w, d, config)) for w, d in resolved]
        else:
            with ProcessPoolExecutor(
                max_workers=report.jobs_used,
                initializer=init_worker,
                initargs=(cache_dir, trace_dir),
            ) as pool:
                outcomes = list(
                    pool.map(run_job, [(w, d, config) for w, d in resolved])
                )
        report.wall_seconds = time.perf_counter() - start
        for (workload, design), (result, source, seconds) in zip(resolved, outcomes):
            instant(
                "sweep.job_done",
                category="sweep",
                workload=workload.name,
                design=design,
                source=source,
                seconds=round(seconds, 6),
            )
            runner.adopt(cache_key(workload, design, config), result)
            report.results.append(result)
            report.job_names.append((workload.name, design))
            report.sources.append(source)
            report.seconds.append(seconds)
    return report


def sweep_with_report(
    workloads: Iterable[Workload],
    designs: Iterable[str],
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
    baseline: str = "uncompressed",
    cache_dir: Optional[str] = None,
) -> Tuple[Dict[str, Dict[str, float]], BatchReport]:
    """Speedup matrix plus the batch's provenance/timing report."""
    workload_list = [runner.resolve_workload(w) for w in workloads]
    design_list = list(designs)
    needed = list(dict.fromkeys([*design_list, baseline]))
    tasks: List[Job] = [(w, d) for w in workload_list for d in needed]
    report = run_batch(tasks, config=config, jobs=jobs, cache_dir=cache_dir)
    by_job: Dict[Tuple[str, str], SimResult] = {
        (w.name, d): result for (w, d), result in zip(tasks, report.results)
    }
    matrix = {
        w.name: {
            design: weighted_speedup(by_job[(w.name, design)], by_job[(w.name, baseline)])
            for design in design_list
        }
        for w in workload_list
    }
    return matrix, report


def sweep(
    workloads: Iterable[Workload],
    designs: Iterable[str],
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
    baseline: str = "uncompressed",
) -> Dict[str, Dict[str, float]]:
    """Parallel speedup matrix, identical to the serial runner's."""
    matrix, _ = sweep_with_report(workloads, designs, config, jobs, baseline)
    return matrix


def suite_geomean(
    workloads: Iterable[Workload],
    design: str,
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
) -> float:
    """Parallel geometric-mean weighted speedup over a suite."""
    matrix, _ = sweep_with_report(workloads, [design], config, jobs)
    return geometric_mean(row[design] for row in matrix.values())


__all__ = [
    "BatchReport",
    "Job",
    "init_worker",
    "run_batch",
    "run_job",
    "suite_geomean",
    "sweep",
    "sweep_with_report",
]
