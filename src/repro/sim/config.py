"""Simulation configuration.

Two preset scales are provided:

- :func:`paper_config` — the paper's Table I parameters (8MB L3, 32KB
  metadata cache, 16GB memory).  Faithful, but needs billion-instruction
  traces to warm up, which a pure-Python simulator cannot run.
- :func:`bench_config` — a proportionally scaled system (1MB L3) matched
  to the synthetic traces' footprints so that cache pressure, metadata-
  cache reach and bandwidth saturation sit in the same regimes as the
  paper's full-size system.  All benchmarks use this scale (DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cache.hierarchy import HierarchyConfig
from repro.core.metadata_table import MetadataTableConfig
from repro.core.ptmc import PTMCConfig
from repro.dram.timing import DDRTiming, DRAMGeometry


@dataclass(frozen=True)
class SamplingConfig:
    """Dynamic-PTMC sampling parameters (paper §V-A)."""

    counter_bits: int = 12
    sample_period: int = 128  # 1% of sets
    per_core: bool = True
    benefit_weight: int = 1


@dataclass(frozen=True)
class SimConfig:
    """Everything needed to instantiate one simulated system."""

    num_cores: int = 8
    width: int = 4
    mlp: int = 8
    ops_per_core: int = 6_000
    warmup_ops: int = 8_000
    """Per-core operations run before statistics collection starts — the
    stand-in for the paper's PinPoints warmup: compaction of the resident
    working set is a one-time cost the paper's billion-instruction runs
    amortise away, so it must not dominate short synthetic traces."""
    capacity_lines: int = 1 << 22  # 256MB of 64-byte lines
    batch_chunk: int = 1024
    """Trace records pre-decoded per block so compressed sizes can be
    precomputed by the vectorized batch kernel; ``0`` replays the scalar
    per-record path (the reference the golden tests compare against).
    Either value produces bitwise-identical results."""
    seed: int = 0
    page_policy: str = "open"
    refresh: bool = True
    llc_policy: Optional[str] = None
    """LLC replacement-policy override (a registry name from
    :mod:`repro.cache.replacement`: ``lru``/``fifo``/``random``/``srrip``/
    ``pref_lru``).  ``None`` defers to ``hierarchy.l3_policy``.  The knob
    is an ordinary serialisable field, so it participates in the
    disk-cache key: two runs differing only in replacement policy never
    share a stored result."""
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    timing: DDRTiming = field(default_factory=DDRTiming)
    geometry: DRAMGeometry = field(default_factory=DRAMGeometry)
    metadata: MetadataTableConfig = field(default_factory=MetadataTableConfig)
    ptmc: PTMCConfig = field(default_factory=PTMCConfig)
    sampling: SamplingConfig = field(default_factory=SamplingConfig)

    def with_(self, **overrides) -> "SimConfig":
        """Functional update (the config is frozen)."""
        return replace(self, **overrides)


def paper_config(**overrides) -> SimConfig:
    """Paper Table I scale (impractically large for Python traces)."""
    base = SimConfig(
        capacity_lines=1 << 28,  # 16GB
        hierarchy=HierarchyConfig(),  # 8MB L3 etc.
    )
    return base.with_(**overrides) if overrides else base


def bench_config(**overrides) -> SimConfig:
    """Benchmark scale: 1MB L3, 8KB metadata cache, short traces.

    Scaling keeps the ratios that drive the paper's effects: workload
    footprints exceed the L3 by ~6-20x (memory-bound), and the metadata
    cache covers ~1/8 of a GAP footprint (thrashes) while covering most of
    a SPEC footprint (mostly hits) — the same regimes as 32KB vs GB-scale
    footprints at paper scale.
    """
    base = SimConfig(
        hierarchy=HierarchyConfig(
            l1_bytes=16 * 1024,
            l2_bytes=64 * 1024,
            l3_bytes=256 * 1024,
        ),
        metadata=MetadataTableConfig(cache_bytes=4 * 1024),
        # counter width and sampling rate scale with the shortened traces:
        # the decision dynamics (saturate up under benefit, drain under
        # cost) match the paper's 12-bit / 1% values at full scale
        sampling=SamplingConfig(counter_bits=8, sample_period=4, per_core=True, benefit_weight=3),
    )
    return base.with_(**overrides) if overrides else base


def quick_config(**overrides) -> SimConfig:
    """A very small system for unit/integration tests (fast, still 8-core)."""
    base = SimConfig(
        ops_per_core=2_000,
        capacity_lines=1 << 18,
        hierarchy=HierarchyConfig(
            l1_bytes=4 * 1024,
            l2_bytes=16 * 1024,
            l3_bytes=64 * 1024,
        ),
        metadata=MetadataTableConfig(cache_bytes=1 * 1024),
        sampling=SamplingConfig(counter_bits=6, sample_period=4, per_core=True, benefit_weight=3),
    )
    return base.with_(**overrides) if overrides else base
