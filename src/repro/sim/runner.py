"""High-level experiment runner with layered result caching.

``simulate`` runs (workload, design, config) once per key and serves
repeats from two layers:

1. an in-process memo (the per-session cache the benchmarks share), and
2. an optional content-addressed on-disk cache
   (:mod:`repro.sim.diskcache`) that survives across processes, enabled
   with :func:`configure_disk_cache` — the CLI and the benchmark harness
   turn it on by default.

Keys are the full identity of the run — the workload's complete
parameter set, the design, and the resolved config — so two workloads
that share a name but differ in parameters never alias each other's
results.  ``compare`` produces the paper's headline metric: weighted
speedup over the uncompressed baseline.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.obs.sampler import ObsConfig
from repro.obs.tracing import span
from repro.sim.config import SimConfig, bench_config
from repro.sim.diskcache import DiskCache, cache_key
from repro.sim.results import SimResult, geometric_mean, weighted_speedup
from repro.sim.system import DESIGNS, SimulatedSystem
from repro.workloads.suites import Workload, get_workload

_memo: Dict[str, SimResult] = {}
_disk: Optional[DiskCache] = None


@dataclass
class RunnerStats:
    """Process-wide execution counters (surfaced by the CLI/benchmarks)."""

    executed: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    sim_seconds: float = 0.0
    #: wall time spent *serving* cache hits (lookup + replay copy) —
    #: tracked apart from ``sim_seconds`` so replays never masquerade as
    #: simulation time
    hit_seconds: float = 0.0
    #: wall time of each simulation actually executed, in call order
    run_seconds: list = field(default_factory=list)

    def as_dict(self) -> Dict[str, float]:
        return {
            "executed": self.executed,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "sim_seconds": round(self.sim_seconds, 6),
            "hit_seconds": round(self.hit_seconds, 6),
        }

    def reset(self) -> None:
        self.executed = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.sim_seconds = 0.0
        self.hit_seconds = 0.0
        self.run_seconds.clear()


stats = RunnerStats()


def configure_disk_cache(path=None, enabled: bool = True) -> Optional[DiskCache]:
    """Enable (or disable) the persistent result cache for this process.

    ``path=None`` uses the default directory (``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro-ptmc/sim``).  Returns the active cache, if any.
    """
    global _disk
    _disk = DiskCache(path) if enabled else None
    return _disk


def disk_cache() -> Optional[DiskCache]:
    """The currently configured on-disk cache (``None`` when disabled)."""
    return _disk


def resolve_workload(workload) -> Workload:
    """Accept a roster name, a ``trace:<hash>`` reference, or an object.

    ``trace:<hash-or-prefix>`` resolves through the process-default
    :class:`~repro.traces.store.TraceStore` into a
    :class:`~repro.traces.replay.TraceWorkload`, whose full trace hash
    participates in the disk-cache key like any other workload field.
    """
    if isinstance(workload, str):
        if workload.startswith("trace:"):
            from repro.traces.replay import trace_workload

            return trace_workload(workload[len("trace:"):])
        return get_workload(workload)
    return workload


def _execute(
    workload: Workload,
    design: str,
    config: SimConfig,
    obs: Optional[ObsConfig] = None,
) -> SimResult:
    start = time.perf_counter()
    with span(
        "runner.execute", category="runner", design=design, workload=workload.name
    ):
        result = SimulatedSystem(workload, design, config, obs=obs).run()
    elapsed = time.perf_counter() - start
    result.extras["sim_seconds"] = elapsed
    stats.executed += 1
    stats.sim_seconds += elapsed
    stats.run_seconds.append(elapsed)
    return result


def _obs_satisfied(result: SimResult, obs: Optional[ObsConfig]) -> bool:
    """Whether a cached result carries the telemetry ``obs`` asks for.

    Observability is not part of the cache key (it must never perturb
    result identity), so a hit may predate the sampling request.  Such a
    hit is still *correct* — core metrics are identical either way — but
    it lacks the requested timeseries, so the runner re-executes and
    overwrites the stored entry with the richer one.
    """
    if obs is None or not obs.sampling:
        return True
    return result.timeseries is not None and result.timeseries.interval == obs.sample_interval


def _serve_hit(result: SimResult, started: float) -> SimResult:
    """Prepare a cached result for replay to a caller.

    The memoized/stored object is never handed out (or mutated): callers
    get a deep copy whose extras say it *is* a replay (``cached = 1.0``)
    and how long the serve took (``serve_seconds``); the serving layer is
    the ``source`` element of the caller's tuple.
    The original ``sim_seconds`` — the wall time of the simulation that
    produced the result, wherever it ran — is left intact as provenance;
    it no longer doubles as "how long this call took".
    """
    replay = copy.deepcopy(result)
    elapsed = time.perf_counter() - started
    stats.hit_seconds += elapsed
    replay.extras["cached"] = 1.0
    replay.extras["serve_seconds"] = elapsed
    return replay


def simulate_with_source(
    workload,
    design: str,
    config: Optional[SimConfig] = None,
    use_cache: bool = True,
    obs: Optional[ObsConfig] = None,
) -> Tuple[SimResult, str]:
    """Like :func:`simulate`, also reporting where the result came from.

    The source is one of ``"memory"``, ``"disk"`` or ``"executed"``.
    Cache hits are served as marked copies — see :func:`_serve_hit`.
    When ``obs`` requests interval sampling, a cached result without a
    matching timeseries is treated as a miss: the run re-executes (same
    core metrics, by construction) and the cached entry is upgraded.
    """
    workload = resolve_workload(workload)
    if config is None:
        config = bench_config()
    if not use_cache:
        return _execute(workload, design, config, obs=obs), "executed"
    started = time.perf_counter()
    key = cache_key(workload, design, config)
    cached = _memo.get(key)
    if cached is not None and _obs_satisfied(cached, obs):
        stats.memory_hits += 1
        return _serve_hit(cached, started), "memory"
    if _disk is not None:
        loaded = _disk.get(key)
        if loaded is not None and _obs_satisfied(loaded, obs):
            stats.disk_hits += 1
            _memo[key] = loaded
            return _serve_hit(loaded, started), "disk"
    result = _execute(workload, design, config, obs=obs)
    _memo[key] = result
    if _disk is not None:
        _disk.put(key, result)
    return result, "executed"


def simulate(
    workload,
    design: str,
    config: Optional[SimConfig] = None,
    use_cache: bool = True,
    obs: Optional[ObsConfig] = None,
) -> SimResult:
    """Run one simulation (memo -> disk cache -> execute)."""
    result, _ = simulate_with_source(workload, design, config, use_cache, obs=obs)
    return result


def adopt(key: str, result: SimResult) -> None:
    """Seed the in-process memo with a result computed elsewhere.

    Used by the parallel sweep engine to make worker-computed results
    visible to subsequent serial calls in the parent process.
    """
    _memo.setdefault(key, result)


def compare(
    workload,
    design: str,
    config: Optional[SimConfig] = None,
    baseline: str = "uncompressed",
) -> float:
    """Weighted speedup of ``design`` over ``baseline`` on one workload."""
    result = simulate(workload, design, config)
    base = simulate(workload, baseline, config)
    return weighted_speedup(result, base)


def sweep(
    workloads: Iterable[Workload],
    designs: Iterable[str],
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Speedup matrix: {workload: {design: weighted speedup}}.

    ``jobs > 1`` dispatches the runs to a process pool (deterministic
    seeds make the parallel results bitwise-identical to serial ones).
    """
    if jobs is not None and jobs > 1:
        from repro.sim import parallel

        return parallel.sweep(workloads, designs, config, jobs=jobs)
    matrix: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        matrix[workload.name] = {
            design: compare(workload, design, config) for design in designs
        }
    return matrix


def suite_geomean(
    workloads: Iterable[Workload],
    design: str,
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
) -> float:
    """Geometric-mean weighted speedup over a suite (paper's averages)."""
    if jobs is not None and jobs > 1:
        from repro.sim import parallel

        return parallel.suite_geomean(workloads, design, config, jobs=jobs)
    return geometric_mean(compare(w, design, config) for w in workloads)


def clear_cache() -> None:
    """Drop memoized simulation results (frees memory between sweeps)."""
    _memo.clear()


def execution_stats() -> Dict[str, float]:
    """Runner counters plus the disk cache's, for reporting."""
    payload: Dict[str, float] = dict(stats.as_dict())
    if _disk is not None:
        for name, value in _disk.counters.as_dict().items():
            payload[f"disk_{name}"] = value
    return payload


def register_stats(scope) -> None:
    """Expose the process-wide runner counters under ``scope``.

    Registers the same counts :func:`execution_stats` reports — cache
    layer hits and executions, plus the disk cache's own counters —
    as sourced telemetry stats, so ``repro stats`` and the service's
    ``/metrics`` endpoint surface them uniformly as ``runner.*`` paths.
    The disk-cache sources read :func:`disk_cache` dynamically, so a
    later :func:`configure_disk_cache` is picked up without
    re-registering.
    """
    scope.counter("executed", lambda: stats.executed, doc="simulations executed")
    scope.counter("memory_hits", lambda: stats.memory_hits, doc="in-process memo hits")
    scope.counter("disk_hits", lambda: stats.disk_hits, doc="disk-cache hits")
    scope.gauge(
        "sim_seconds",
        lambda: round(stats.sim_seconds, 6),
        doc="total wall time spent executing simulations",
    )
    scope.gauge(
        "hit_seconds",
        lambda: round(stats.hit_seconds, 6),
        doc="total wall time spent serving cached results",
    )
    disk_scope = scope.scope("disk")

    def _disk_counter(name: str):
        return lambda: getattr(_disk.counters, name) if _disk is not None else 0

    for name in ("hits", "misses", "stores", "evicted_corrupt"):
        disk_scope.counter(name, _disk_counter(name), doc=f"disk cache {name}")


__all__ = [
    "DESIGNS",
    "RunnerStats",
    "adopt",
    "clear_cache",
    "compare",
    "configure_disk_cache",
    "disk_cache",
    "execution_stats",
    "register_stats",
    "resolve_workload",
    "simulate",
    "simulate_with_source",
    "stats",
    "suite_geomean",
    "sweep",
]
