"""High-level experiment runner with per-session result caching.

``simulate`` runs (workload, design, config) once and memoizes the result
so the many figure/table benchmarks that share a baseline do not re-run
it.  ``compare`` produces the paper's headline metric: weighted speedup
over the uncompressed baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.sim.config import SimConfig, bench_config
from repro.sim.results import SimResult, geometric_mean, weighted_speedup
from repro.sim.system import DESIGNS, SimulatedSystem
from repro.workloads.suites import Workload, get_workload

_cache: Dict[Tuple[str, str, SimConfig], SimResult] = {}


def simulate(
    workload,
    design: str,
    config: Optional[SimConfig] = None,
    use_cache: bool = True,
) -> SimResult:
    """Run one simulation (memoized on (workload name, design, config))."""
    if isinstance(workload, str):
        workload = get_workload(workload)
    if config is None:
        config = bench_config()
    key = (workload.name, design, config)
    if use_cache and key in _cache:
        return _cache[key]
    result = SimulatedSystem(workload, design, config).run()
    if use_cache:
        _cache[key] = result
    return result


def compare(
    workload,
    design: str,
    config: Optional[SimConfig] = None,
    baseline: str = "uncompressed",
) -> float:
    """Weighted speedup of ``design`` over ``baseline`` on one workload."""
    result = simulate(workload, design, config)
    base = simulate(workload, baseline, config)
    return weighted_speedup(result, base)


def sweep(
    workloads: Iterable[Workload],
    designs: Iterable[str],
    config: Optional[SimConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Speedup matrix: {workload: {design: weighted speedup}}."""
    matrix: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        matrix[workload.name] = {
            design: compare(workload, design, config) for design in designs
        }
    return matrix


def suite_geomean(
    workloads: Iterable[Workload],
    design: str,
    config: Optional[SimConfig] = None,
) -> float:
    """Geometric-mean weighted speedup over a suite (paper's averages)."""
    return geometric_mean(compare(w, design, config) for w in workloads)


def clear_cache() -> None:
    """Drop memoized simulation results (frees memory between sweeps)."""
    _cache.clear()


__all__ = [
    "DESIGNS",
    "simulate",
    "compare",
    "sweep",
    "suite_geomean",
    "clear_cache",
]
