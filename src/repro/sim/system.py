"""Wiring: workload + design + config -> a runnable simulated system."""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.core.base_controller import MemoryController
from repro.core.ideal import IdealTMCController
from repro.core.memzip import MemZipController
from repro.core.metadata_table import MetadataTableController
from repro.core.policy import AlwaysOnPolicy, CompressionPolicy, SamplingPolicy
from repro.core.prefetch import NextLinePrefetchController
from repro.core.ptmc import PTMCController
from repro.core.uncompressed import UncompressedController
from repro.cpu.core import CoreModel
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMSystem
from repro.sim.config import SimConfig
from repro.sim.results import SimResult
from repro.vm.page_table import LINES_PER_PAGE, PageTable
from repro.workloads.generators import MixWorkload, WorkloadSpec, WorkloadTraceGenerator

#: Design names accepted by :func:`build_controller` and the runner.
DESIGNS = (
    "uncompressed",
    "tmc_table",
    "memzip",
    "ideal",
    "static_ptmc",
    "dynamic_ptmc",
    "prefetch",
)


def build_controller(
    design: str,
    memory: PhysicalMemory,
    dram: DRAMSystem,
    config: SimConfig,
) -> Tuple[MemoryController, Optional[CompressionPolicy]]:
    """Instantiate one of the studied designs by name."""
    if design == "uncompressed":
        return UncompressedController(memory, dram), None
    if design == "tmc_table":
        return MetadataTableController(memory, dram, config=config.metadata), None
    if design == "memzip":
        from repro.core.memzip import MemZipConfig

        return (
            MemZipController(
                memory,
                dram,
                config=MemZipConfig(cache_bytes=config.metadata.cache_bytes),
            ),
            None,
        )
    if design == "ideal":
        return IdealTMCController(memory, dram), None
    if design == "static_ptmc":
        policy = AlwaysOnPolicy()
        return PTMCController(memory, dram, config=config.ptmc, policy=policy), policy
    if design == "dynamic_ptmc":
        policy = SamplingPolicy(
            counter_bits=config.sampling.counter_bits,
            sample_period=config.sampling.sample_period,
            num_cores=config.num_cores,
            per_core=config.sampling.per_core,
            benefit_weight=config.sampling.benefit_weight,
        )
        return PTMCController(memory, dram, config=config.ptmc, policy=policy), policy
    if design == "prefetch":
        return NextLinePrefetchController(memory, dram), None
    raise ValueError(f"unknown design {design!r}; choose from {DESIGNS}")


class SimulatedSystem:
    """An 8-core system running one workload on one memory design."""

    def __init__(self, workload, design: str, config: SimConfig):
        self.workload = workload
        self.design = design
        self.config = config
        self.page_table = PageTable(config.capacity_lines, seed=config.seed + 99)
        self.generators: List[WorkloadTraceGenerator] = [
            WorkloadTraceGenerator(self._spec_for_core(core), core)
            for core in range(config.num_cores)
        ]
        self.memory = PhysicalMemory(
            config.capacity_lines, initial_content=self._initial_content
        )
        self.dram = DRAMSystem(
            config.timing,
            config.geometry,
            page_policy=config.page_policy,
            refresh=config.refresh,
        )
        self.controller, self.policy = build_controller(
            design, self.memory, self.dram, config
        )
        hcfg = config.hierarchy
        if hcfg.num_cores != config.num_cores:
            hcfg = HierarchyConfig(
                num_cores=config.num_cores,
                l1_bytes=hcfg.l1_bytes,
                l1_ways=hcfg.l1_ways,
                l1_latency=hcfg.l1_latency,
                l2_bytes=hcfg.l2_bytes,
                l2_ways=hcfg.l2_ways,
                l2_latency=hcfg.l2_latency,
                l3_bytes=hcfg.l3_bytes,
                l3_ways=hcfg.l3_ways,
                l3_latency=hcfg.l3_latency,
            )
        self.hierarchy = CacheHierarchy(self.controller, hcfg, self.policy)
        total_ops = config.ops_per_core + config.warmup_ops
        self.cores = [
            CoreModel(
                core,
                self.generators[core].generate(total_ops),
                self.hierarchy,
                self.page_table,
                width=config.width,
                mlp=config.mlp,
            )
            for core in range(config.num_cores)
        ]

    def _spec_for_core(self, core_id: int) -> WorkloadSpec:
        if isinstance(self.workload, MixWorkload):
            return self.workload.spec_for_core(core_id)
        # rate mode: same benchmark on every core, distinct seeds
        return self.workload.with_seed(self.workload.seed + core_id)

    def _initial_content(self, line_addr: int) -> bytes:
        """First-touch contents: the owning workload's version-0 data."""
        frame, offset = divmod(line_addr, LINES_PER_PAGE)
        try:
            core_id, vpage = self.page_table.reverse(frame)
        except KeyError:
            return b"\x00" * 64  # untranslated region (metadata, spill bitmaps)
        vline = vpage * LINES_PER_PAGE + offset
        return self.generators[core_id].data.line(vline, 0)

    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Event-driven run: warmup phase, stats snapshot, measured phase."""
        warmup = self.config.warmup_ops
        if warmup:
            self._run_phase(lambda core: core.mem_ops < warmup)
        self._snapshot()
        self._run_phase(None)
        return self._collect()

    def _run_phase(self, keep_running) -> None:
        """Step cores in global-time order while ``keep_running`` allows."""
        heap = [
            (core.time, core.core_id)
            for core in self.cores
            if not core.done and (keep_running is None or keep_running(core))
        ]
        heapq.heapify(heap)
        while heap:
            _, core_id = heapq.heappop(heap)
            core = self.cores[core_id]
            if core.step() and (keep_running is None or keep_running(core)):
                heapq.heappush(heap, (core.time, core_id))

    def _snapshot(self) -> None:
        """Record counters at the measurement boundary (end of warmup)."""
        self._core_time0 = [core.time for core in self.cores]
        self._core_instr0 = [core.instructions for core in self.cores]
        stats = self.dram.stats
        self._dram0 = {
            "by_category": dict(stats.accesses_by_category),
            "row_hits": stats.row_hits,
            "row_misses": stats.row_misses,
            "activations": stats.activations,
            "reads": stats.reads,
            "writes": stats.writes,
            "busy_cycles": stats.busy_cycles,
        }
        self._l3_hits0 = self.hierarchy.l3.hits
        self._l3_misses0 = self.hierarchy.l3.misses
        self._useful0 = self.hierarchy.useful_prefetches
        self._demand0 = self.hierarchy.demand_accesses
        controller = self.controller
        if isinstance(controller, PTMCController):
            controller.llp.reset_stats()
            self._ptmc0 = (
                controller.inversions,
                controller.invalidate_writes,
                controller.clean_writebacks,
            )
        if isinstance(controller, MetadataTableController):
            controller.metadata_cache.reset_stats()

    def _measured_dram(self) -> "DRAMStatsDelta":
        from repro.dram.system import DRAMStats

        stats = self.dram.stats
        base = self._dram0
        delta = DRAMStats()
        for category, count in stats.accesses_by_category.items():
            measured = count - base["by_category"].get(category, 0)
            if measured:
                delta.accesses_by_category[category] = measured
        delta.row_hits = stats.row_hits - base["row_hits"]
        delta.row_misses = stats.row_misses - base["row_misses"]
        delta.activations = stats.activations - base["activations"]
        delta.reads = stats.reads - base["reads"]
        delta.writes = stats.writes - base["writes"]
        delta.busy_cycles = stats.busy_cycles - base["busy_cycles"]
        return delta

    def _collect(self) -> SimResult:
        name = self.workload.name
        result = SimResult(
            workload=name,
            design=self.design,
            core_cycles=[
                core.time - t0 for core, t0 in zip(self.cores, self._core_time0)
            ],
            core_instructions=[
                core.instructions - i0
                for core, i0 in zip(self.cores, self._core_instr0)
            ],
            dram=self._measured_dram(),
            l3_hits=self.hierarchy.l3.hits - self._l3_hits0,
            l3_misses=self.hierarchy.l3.misses - self._l3_misses0,
            useful_prefetches=self.hierarchy.useful_prefetches - self._useful0,
            demand_accesses=self.hierarchy.demand_accesses - self._demand0,
        )
        controller = self.controller
        if isinstance(controller, PTMCController):
            result.llp_accuracy = controller.llp.accuracy
            inv0, inval0, cwb0 = self._ptmc0
            result.extras["inversions"] = controller.inversions - inv0
            result.extras["invalidate_writes"] = controller.invalidate_writes - inval0
            result.extras["clean_writebacks"] = controller.clean_writebacks - cwb0
            result.extras["lit_occupancy"] = len(controller.lit)
        if isinstance(controller, (MetadataTableController, MemZipController)):
            result.metadata_hit_rate = controller.metadata_hit_rate
        if isinstance(self.policy, SamplingPolicy):
            result.extras["policy_benefits"] = self.policy.benefits
            result.extras["policy_costs"] = self.policy.costs
            result.extras["compression_enabled_final"] = float(
                sum(
                    self.policy.enabled_for(core)
                    for core in range(self.config.num_cores)
                )
            ) / self.config.num_cores
        return result
