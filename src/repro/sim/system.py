"""Wiring: workload + design + config -> a runnable simulated system."""

from __future__ import annotations

import dataclasses
import heapq
from typing import Optional, Tuple

from repro.cache.hierarchy import CacheHierarchy
from repro.compression.batch import BatchCompressor
from repro.core.base_controller import MemoryController
from repro.core.ideal import IdealTMCController
from repro.core.memzip import MemZipController
from repro.core.metadata_table import MetadataTableController
from repro.core.policy import AlwaysOnPolicy, CompressionPolicy, SamplingPolicy
from repro.core.prefetch import NextLinePrefetchController
from repro.core.ptmc import PTMCController
from repro.core.uncompressed import UncompressedController
from repro.cpu.core import CoreModel
from repro.dram.storage import PhysicalMemory
from repro.dram.system import DRAMStats, DRAMSystem
from repro.obs.sampler import IntervalSampler, ObsConfig
from repro.obs.tracing import span
from repro.sim.config import SimConfig
from repro.sim.results import SimResult
from repro.telemetry import Metrics, StatRegistry
from repro.types import Category
from repro.vm.page_table import LINES_PER_PAGE, PageTable
from repro.workloads.generators import MixWorkload

#: Design names accepted by :func:`build_controller` and the runner.
DESIGNS = (
    "uncompressed",
    "tmc_table",
    "memzip",
    "ideal",
    "static_ptmc",
    "dynamic_ptmc",
    "prefetch",
)


def build_controller(
    design: str,
    memory: PhysicalMemory,
    dram: DRAMSystem,
    config: SimConfig,
) -> Tuple[MemoryController, Optional[CompressionPolicy]]:
    """Instantiate one of the studied designs by name."""
    if design == "uncompressed":
        return UncompressedController(memory, dram), None
    if design == "tmc_table":
        return MetadataTableController(memory, dram, config=config.metadata), None
    if design == "memzip":
        from repro.core.memzip import MemZipConfig

        return (
            MemZipController(
                memory,
                dram,
                config=MemZipConfig(cache_bytes=config.metadata.cache_bytes),
            ),
            None,
        )
    if design == "ideal":
        return IdealTMCController(memory, dram), None
    if design == "static_ptmc":
        policy = AlwaysOnPolicy()
        return PTMCController(memory, dram, config=config.ptmc, policy=policy), policy
    if design == "dynamic_ptmc":
        policy = SamplingPolicy(
            counter_bits=config.sampling.counter_bits,
            sample_period=config.sampling.sample_period,
            num_cores=config.num_cores,
            per_core=config.sampling.per_core,
            benefit_weight=config.sampling.benefit_weight,
        )
        return PTMCController(memory, dram, config=config.ptmc, policy=policy), policy
    if design == "prefetch":
        return NextLinePrefetchController(memory, dram), None
    raise ValueError(f"unknown design {design!r}; choose from {DESIGNS}")


class SimulatedSystem:
    """An 8-core system running one workload on one memory design."""

    def __init__(
        self,
        workload,
        design: str,
        config: SimConfig,
        obs: Optional[ObsConfig] = None,
    ):
        self.workload = workload
        self.design = design
        self.config = config
        self.obs = obs or ObsConfig()
        self.page_table = PageTable(config.capacity_lines, seed=config.seed + 99)
        # each spec builds its own generator flavour: synthetic specs a
        # WorkloadTraceGenerator, trace workloads a TraceReplayGenerator
        self.generators = [
            self._spec_for_core(core).make_generator(core)
            for core in range(config.num_cores)
        ]
        self.memory = PhysicalMemory(
            config.capacity_lines, initial_content=self._initial_content
        )
        self.dram = DRAMSystem(
            config.timing,
            config.geometry,
            page_policy=config.page_policy,
            refresh=config.refresh,
        )
        self.controller, self.policy = build_controller(
            design, self.memory, self.dram, config
        )
        hcfg = config.hierarchy
        if hcfg.num_cores != config.num_cores:
            hcfg = dataclasses.replace(hcfg, num_cores=config.num_cores)
        if config.llc_policy is not None and hcfg.l3_policy != config.llc_policy:
            hcfg = dataclasses.replace(hcfg, l3_policy=config.llc_policy)
        self.hierarchy = CacheHierarchy(self.controller, hcfg, self.policy)
        self.batch = self._make_batch()
        total_ops = config.ops_per_core + config.warmup_ops
        self.cores = [
            CoreModel(
                core,
                self._trace_for(core, total_ops),
                self.hierarchy,
                self.page_table,
                width=config.width,
                mlp=config.mlp,
            )
            for core in range(config.num_cores)
        ]
        self.registry = self._build_registry()
        self.sampler = self._make_sampler()

    def _make_sampler(self) -> Optional[IntervalSampler]:
        """Interval sampler over the registry, when observation asks for one.

        Strictly read-only: the sampler windows the same sourced stats
        the end-of-run collection reads, so its presence cannot change a
        single simulated outcome (``tests/test_obs_golden.py``).
        """
        if not self.obs.sampling:
            return None
        return IntervalSampler(
            self.registry,
            self.obs.sample_interval,
            paths=self.obs.sample_paths,
            phase="warmup" if self.config.warmup_ops else "measured",
            trace_counters=self.obs.trace_counters,
        )

    def _make_batch(self) -> Optional[BatchCompressor]:
        """Batch front-end for the controller's compressor, if seedable.

        Batch-driving only pays off when the vectorized sizes can be
        parked somewhere the controller's scalar queries will find them —
        i.e. the compressor exposes a ``seed_sizes`` memo.  Controllers
        without a compressor (uncompressed, prefetch) replay the plain
        scalar trace; either way the record stream and every simulated
        outcome are identical (the golden test holds all seven designs to
        that).
        """
        if self.config.batch_chunk <= 0:
            return None
        compressor = getattr(self.controller, "compressor", None)
        if compressor is None or not hasattr(compressor, "seed_sizes"):
            return None
        return BatchCompressor(compressor)

    def _trace_for(self, core_id: int, total_ops: int):
        """The core's trace iterator: chunk-batched when it can help."""
        generator = self.generators[core_id]
        if self.batch is None:
            return generator.generate(total_ops)
        return generator.generate_batched(
            total_ops, self.config.batch_chunk, on_chunk=self._precompute_chunk
        )

    def _precompute_chunk(self, chunk) -> None:
        """Seed the compressor's size memo from one pre-decoded chunk."""
        lines = chunk.write_lines()
        if lines:
            with span("batch.precompute", category="sim", lines=len(lines)):
                self.batch.precompute(lines)

    def _build_registry(self) -> StatRegistry:
        """One registry spanning every stat-bearing component.

        Each component hangs its counters under a fixed namespace —
        ``dram.*``, ``llc.*``, ``core.<id>.*``, ``<design>.*`` and
        ``policy.*`` — so downstream consumers address metrics by path
        instead of by component type.
        """
        registry = StatRegistry()
        self.dram.register_stats(registry.scope("dram"))
        self.hierarchy.register_stats(registry.scope("llc"))
        self.controller.register_stats(registry.scope(self.controller.name))
        if self.policy is not None:
            self.policy.register_stats(registry.scope("policy"))
        cores = registry.scope("core")
        for core in self.cores:
            core.register_stats(cores.scope(str(core.core_id)))
        replayers = [g for g in self.generators if hasattr(g, "replayed_records")]
        if replayers:
            trace_scope = registry.scope("trace")
            trace_scope.counter(
                "replayed_records",
                lambda: sum(g.replayed_records for g in replayers),
                doc="stored trace records replayed across all cores",
            )
            trace_scope.counter(
                "synthesized_fills",
                lambda: sum(g.synthesized_fills for g in replayers),
                doc="write records whose line data was synthesized",
            )
            trace_scope.counter(
                "loops",
                lambda: sum(g.loops for g in replayers),
                doc="times a core's trace wrapped around",
            )
        return registry

    def _spec_for_core(self, core_id: int):
        if isinstance(self.workload, MixWorkload):
            return self.workload.spec_for_core(core_id)
        # rate mode: same benchmark on every core, distinct seeds
        return self.workload.with_seed(self.workload.seed + core_id)

    def _initial_content(self, line_addr: int) -> bytes:
        """First-touch contents: the owning workload's version-0 data."""
        frame, offset = divmod(line_addr, LINES_PER_PAGE)
        try:
            core_id, vpage = self.page_table.reverse(frame)
        except KeyError:
            return b"\x00" * 64  # untranslated region (metadata, spill bitmaps)
        vline = vpage * LINES_PER_PAGE + offset
        return self.generators[core_id].data.line(vline, 0)

    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Event-driven run: warmup phase, registry snapshot, measured phase."""
        with span(
            "sim.run",
            category="sim",
            design=self.design,
            workload=self.workload.name,
        ):
            warmup = self.config.warmup_ops
            if warmup:
                with span("sim.phase", category="sim", phase="warmup"):
                    self._run_phase(lambda core: core.mem_ops < warmup)
            baseline = self.registry.snapshot()
            if self.sampler is not None:
                # after the baseline snapshot (same instant, same values):
                # the flushed point closes the warmup phase and the first
                # measured point windows from the measurement boundary
                self.sampler.mark_phase("measured")
            with span("sim.phase", category="sim", phase="measured"):
                self._run_phase(None)
            if self.sampler is not None:
                self.sampler.finish()
            return self._collect(self.registry.delta(baseline))

    def _run_phase(self, keep_running) -> None:
        """Step cores in global-time order while ``keep_running`` allows."""
        heap = [
            (core.time, core.core_id)
            for core in self.cores
            if not core.done and (keep_running is None or keep_running(core))
        ]
        heapq.heapify(heap)
        sampler = self.sampler
        while heap:
            _, core_id = heapq.heappop(heap)
            core = self.cores[core_id]
            stepped = core.step()
            if stepped and sampler is not None:
                sampler.on_access()
            if stepped and (keep_running is None or keep_running(core)):
                heapq.heappush(heap, (core.time, core_id))

    def _measured_dram(self, metrics: Metrics) -> DRAMStats:
        """Measured-phase DRAM statistics rebuilt from the metric paths.

        Only categories with measured traffic are materialised, matching
        the historical accounting.  ``refresh_stalls`` stays zero here for
        wire-format compatibility (it was never deltaed before); the true
        measured value is available at ``dram.refresh_stalls``.
        """
        delta = DRAMStats(
            row_hits=int(metrics["dram.row_hits"]),
            row_misses=int(metrics["dram.row_misses"]),
            activations=int(metrics["dram.activations"]),
            reads=int(metrics["dram.reads"]),
            writes=int(metrics["dram.writes"]),
            busy_cycles=int(metrics["dram.busy_cycles"]),
        )
        for category in Category:
            measured = int(metrics[f"dram.accesses.{category.value}"])
            if measured:
                delta.accesses_by_category[category] = measured
        return delta

    def _collect(self, metrics: Metrics) -> SimResult:
        """Shape the measured-window metrics into a :class:`SimResult`.

        Every value is looked up by registry path; nothing here depends on
        the concrete controller or policy type.
        """
        cores = range(self.config.num_cores)
        result = SimResult(
            workload=self.workload.name,
            design=self.design,
            core_cycles=[int(metrics[f"core.{c}.cycles"]) for c in cores],
            core_instructions=[int(metrics[f"core.{c}.instructions"]) for c in cores],
            dram=self._measured_dram(metrics),
            l3_hits=int(metrics["llc.hits"]),
            l3_misses=int(metrics["llc.misses"]),
            useful_prefetches=int(metrics["llc.useful_prefetches"]),
            demand_accesses=int(metrics["llc.demand_accesses"]),
            metrics=dict(metrics),
        )
        design = self.controller.name
        llp_accuracy = metrics.get(f"{design}.llp.accuracy")
        if llp_accuracy is not None:
            result.llp_accuracy = float(llp_accuracy)
        metadata_hit_rate = metrics.get(f"{design}.metadata_cache.hit_rate")
        if metadata_hit_rate is not None:
            result.metadata_hit_rate = float(metadata_hit_rate)
        if f"{design}.inversions" in metrics:
            result.extras["inversions"] = metrics[f"{design}.inversions"]
            result.extras["invalidate_writes"] = metrics[f"{design}.invalidate_writes"]
            result.extras["clean_writebacks"] = metrics[f"{design}.clean_writebacks"]
            result.extras["lit_occupancy"] = metrics[f"{design}.lit_occupancy"]
        if "policy.benefits" in metrics:
            result.extras["policy_benefits"] = metrics["policy.benefits"]
            result.extras["policy_costs"] = metrics["policy.costs"]
            result.extras["compression_enabled_final"] = metrics[
                "policy.compression_enabled"
            ]
        if self.sampler is not None:
            result.timeseries = self.sampler.timeseries()
        return result
